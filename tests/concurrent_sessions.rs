//! Concurrency tests for the shared-database API: many threads executing
//! through one `SharedDatabase`, with per-session trace/metric isolation
//! and writer/reader coherence.

use scidb::query::StmtResult;
use scidb::{Database, SharedDatabase, Value};
use std::sync::Arc;
use std::thread;

fn seeded(threads: usize) -> SharedDatabase {
    let mut db = Database::with_threads(threads);
    db.run(
        "define H (v = int) (X = 1:8, Y = 1:8);
         create A as H [8, 8];",
    )
    .unwrap();
    for x in 1..=8 {
        for y in 1..=8 {
            db.run(&format!("insert into A[{x}, {y}] values ({})", x * 10 + y))
                .unwrap();
        }
    }
    db.share()
}

#[test]
fn many_threads_share_one_database_handle() {
    let shared = seeded(2);
    let expected = shared.session().query("aggregate(A, {Y}, sum(v))").unwrap();
    let mut handles = Vec::new();
    for _ in 0..16 {
        let shared = shared.clone();
        let expected = expected.clone();
        handles.push(thread::spawn(move || {
            let mut session = shared.session();
            for _ in 0..20 {
                let got = session.query("aggregate(A, {Y}, sum(v))").unwrap();
                assert_eq!(got, expected);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn per_session_traces_and_metrics_stay_isolated() {
    let shared = seeded(1);
    let queries = ["filter(A, v > 40)", "scan(A)", "regrid(A, [2, 2], sum)"];
    let mut handles = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let shared = shared.clone();
        let q = q.to_string();
        handles.push(thread::spawn(move || {
            let mut session = shared.session();
            for _ in 0..(i + 1) * 5 {
                session.query(&q).unwrap();
            }
            // Each session sees exactly its own statements: trace count
            // matches its executions, and every trace is its own query.
            let traces = session.traces();
            assert_eq!(traces.len(), (i + 1) * 5);
            for t in traces {
                assert_eq!(
                    t.spans[0].attr("aql").and_then(|v| v.as_str()),
                    Some(session.prepare(&q).unwrap().cache_key())
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn writers_and_readers_interleave_coherently() {
    let shared = seeded(1);
    let mut handles = Vec::new();
    for i in 0..8 {
        let shared = shared.clone();
        handles.push(thread::spawn(move || {
            let mut session = shared.session();
            session
                .run(&format!("store filter(A, v > {}) into W{i}", i * 10))
                .unwrap();
            // Our own write is immediately visible to our session.
            let got = session.query(&format!("scan(W{i})")).unwrap();
            assert_eq!(got.cell_count(), 64);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // All writes are visible afterwards from a fresh session.
    let mut session = shared.session();
    let names = shared.array_names();
    for i in 0..8 {
        assert!(names.iter().any(|n| n == &format!("W{i}")));
        session.query(&format!("scan(W{i})")).unwrap();
    }
}

#[test]
fn exists_probes_race_with_inserts_without_corruption() {
    let shared = seeded(1);
    let writer = {
        let shared = shared.clone();
        thread::spawn(move || {
            let mut session = shared.session();
            for x in 1..=8 {
                for y in 1..=8 {
                    session
                        .run(&format!("insert into A[{x}, {y}] values (0)"))
                        .unwrap();
                }
            }
        })
    };
    let reader = {
        let shared = shared.clone();
        thread::spawn(move || {
            let mut session = shared.session();
            for _ in 0..50 {
                let r = session.run("exists(A, 4, 4)").unwrap().pop().unwrap();
                assert!(matches!(r, StmtResult::Bool(true)));
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    let got = shared.session().query("scan(A)").unwrap();
    assert_eq!(got.get_cell(&[4, 4]), Some(vec![Value::from(0i64)]));
}

/// The shared result cache under concurrent DDL/DML: readers hammering a
/// cached query while a writer mutates the catalog must never observe a
/// stale generation. The cache versions entries with a generation counter
/// bumped under the catalog write lock and loaded under the read lock, so
/// each reader's observed values must be monotonically non-decreasing.
#[test]
fn result_cache_never_serves_stale_results_under_concurrent_ddl() {
    let shared = seeded(1);
    const ROUNDS: i64 = 24;

    let writer = {
        let shared = shared.clone();
        thread::spawn(move || {
            let mut session = shared.session();
            for k in 1..=ROUNDS {
                // Strictly increasing cell values make staleness visible.
                session
                    .run(&format!("insert into A[1, 1] values ({})", 100 + k))
                    .unwrap();
                // Pure DDL invalidates too: create/drop unrelated arrays.
                if k % 6 == 0 {
                    session
                        .run(&format!("create T{k} as H [8, 8]; drop array T{k}"))
                        .unwrap();
                }
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let shared = shared.clone();
            thread::spawn(move || {
                let mut session = shared.session();
                session.set_result_cache(true);
                let mut last = 0i64;
                for _ in 0..60 {
                    let got = session.query("scan(A)").unwrap();
                    let v = got.get_cell(&[1, 1]).unwrap()[0].as_i64().unwrap();
                    // Seeded value 11, then 101..=100+ROUNDS, never backwards.
                    assert!(v == 11 || (101..=100 + ROUNDS).contains(&v), "{v}");
                    assert!(v >= last, "stale cached result: saw {v} after {last}");
                    last = v;
                    thread::yield_now();
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }

    // Deterministic tail: a repeat query is a cache hit; DDL on an
    // *unrelated* array still invalidates (the generation is global), and
    // the re-evaluated answer is unchanged and final. The query text is
    // unique to this session — the cache is shared, so reusing the
    // readers' `scan(A)` key would start on an already-warm entry.
    let mut session = shared.session();
    session.set_result_cache(true);
    let v1 = session.query("filter(A, v > -1)").unwrap();
    let v2 = session.query("filter(A, v > -1)").unwrap();
    assert_eq!(v1, v2);
    session.run("create Tinv as H [8, 8]").unwrap();
    let v3 = session.query("filter(A, v > -1)").unwrap();
    assert_eq!(v2, v3);
    assert_eq!(
        v3.get_cell(&[1, 1]),
        Some(vec![Value::from(100 + ROUNDS)]),
        "final write must be visible"
    );
    let traces = session.traces();
    let hit = |i: usize| {
        traces[i].spans[0]
            .attr("cache_hit")
            .and_then(|v| v.as_bool())
            .unwrap_or(false)
    };
    assert!(!hit(0), "first query populates the cache");
    assert!(hit(1), "repeat query must be served from the cache");
    assert!(!hit(2), "DDL must invalidate the cached entry");
}

#[test]
fn shared_handle_is_cheap_to_clone_and_send() {
    let shared = seeded(1);
    let arc: Arc<SharedDatabase> = Arc::new(shared.clone());
    let h = thread::spawn(move || arc.session().query("scan(A)").unwrap().cell_count());
    assert_eq!(h.join().unwrap(), 64);
}

/// One named counter's value out of a `scan(system.metrics)` result.
fn metric_value(metrics: &scidb::Array, name: &str) -> i64 {
    metrics
        .cells()
        .find(|(_, rec)| rec[0] == Value::from(name.to_string()))
        .and_then(|(_, rec)| rec[2].as_i64())
        .unwrap_or(0)
}

/// The wire-level accounting loop closes: the QueryStats trailer on every
/// response must agree with what the engine's own introspection arrays
/// report for the same session, and with the process-wide counters in
/// `system.metrics` (which other concurrent tests may also advance, so
/// global deltas are lower-bounded rather than exact).
#[test]
fn query_stats_trailers_cross_check_against_system_metrics() {
    use scidb::server::{Client, Server, ServerConfig};

    let shared = seeded(1);
    let server = Server::start(shared, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr(), "").unwrap();

    // system.metrics scans are excluded from cells-scanned accounting
    // (their scan spans are marked system=true), so the baseline read
    // does not perturb the counter it reads.
    let before = client.query("scan(system.metrics)").unwrap();
    let scanned_before = metric_value(&before, "scidb.query.cells_scanned");
    let hits_before = metric_value(&before, "scidb.query.cache_hits");

    // A cold scan of the 8×8 array reports its 64 cells in the trailer.
    client.query("scan(A)").unwrap();
    let cold = client.last_stats().expect("trailer on every response");
    assert_eq!(cold.cells_scanned, 64, "{cold:?}");
    assert!(!cold.cache_hit);
    // The repeat is served from the shared result cache.
    client.query("scan(A)").unwrap();
    let warm = client.last_stats().unwrap();
    assert!(warm.cache_hit, "{warm:?}");
    assert_eq!(warm.cells_scanned, 0);

    let after = client.query("scan(system.metrics)").unwrap();
    let scanned_after = metric_value(&after, "scidb.query.cells_scanned");
    let hits_after = metric_value(&after, "scidb.query.cache_hits");
    assert!(
        scanned_after - scanned_before >= 64,
        "global cells-scanned delta {} must cover the trailer's 64",
        scanned_after - scanned_before
    );
    assert!(
        hits_after - hits_before >= 1,
        "global cache-hit delta must cover the trailer's hit"
    );

    // Per-session counters are exact (no cross-test pollution): the
    // session's system.sessions row equals the trailer sums.
    let sid = client.session_id();
    let rows = client.query("scan(system.sessions)").unwrap();
    let (_, mine) = rows
        .cells()
        .find(|(_, rec)| rec[0] == Value::from(sid as i64))
        .expect("own session row");
    assert_eq!(mine[4].as_i64(), Some(64), "cells_scanned: {mine:?}");
    assert_eq!(mine[3].as_i64(), Some(1), "cache_hits: {mine:?}");
}

/// `system.metrics` queried twice in one session is monotone: process-wide
/// counters never decrease between two reads.
#[test]
fn system_metrics_counters_are_monotone_within_a_session() {
    let shared = seeded(1);
    let mut session = shared.session();
    let first = session.query("scan(system.metrics)").unwrap();
    session.query("scan(A)").unwrap();
    let second = session.query("scan(system.metrics)").unwrap();
    for (_, rec) in first.cells() {
        let name = match &rec[0] {
            Value::Scalar(scidb::Scalar::String(s)) => s.clone(),
            other => panic!("metric name must be a string, got {other:?}"),
        };
        let kind = match &rec[1] {
            Value::Scalar(scidb::Scalar::String(s)) => s.clone(),
            other => panic!("metric kind must be a string, got {other:?}"),
        };
        if kind == "gauge" {
            continue; // gauges may move either way
        }
        let later = second
            .cells()
            .find(|(_, r)| r[0] == rec[0])
            .unwrap_or_else(|| panic!("metric {name} must not disappear"))
            .1;
        for idx in [2, 3, 4] {
            if let (Some(a), Some(b)) = (rec[idx].as_i64(), later[idx].as_i64()) {
                assert!(b >= a, "{name}[{idx}] went backwards: {a} -> {b}");
            }
        }
    }
}
