//! Concurrency tests for the shared-database API: many threads executing
//! through one `SharedDatabase`, with per-session trace/metric isolation
//! and writer/reader coherence.

use scidb::query::StmtResult;
use scidb::{Database, SharedDatabase, Value};
use std::sync::Arc;
use std::thread;

fn seeded(threads: usize) -> SharedDatabase {
    let mut db = Database::with_threads(threads);
    db.run(
        "define H (v = int) (X = 1:8, Y = 1:8);
         create A as H [8, 8];",
    )
    .unwrap();
    for x in 1..=8 {
        for y in 1..=8 {
            db.run(&format!("insert into A[{x}, {y}] values ({})", x * 10 + y))
                .unwrap();
        }
    }
    db.share()
}

#[test]
fn many_threads_share_one_database_handle() {
    let shared = seeded(2);
    let expected = shared.session().query("aggregate(A, {Y}, sum(v))").unwrap();
    let mut handles = Vec::new();
    for _ in 0..16 {
        let shared = shared.clone();
        let expected = expected.clone();
        handles.push(thread::spawn(move || {
            let mut session = shared.session();
            for _ in 0..20 {
                let got = session.query("aggregate(A, {Y}, sum(v))").unwrap();
                assert_eq!(got, expected);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn per_session_traces_and_metrics_stay_isolated() {
    let shared = seeded(1);
    let queries = ["filter(A, v > 40)", "scan(A)", "regrid(A, [2, 2], sum)"];
    let mut handles = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let shared = shared.clone();
        let q = q.to_string();
        handles.push(thread::spawn(move || {
            let mut session = shared.session();
            for _ in 0..(i + 1) * 5 {
                session.query(&q).unwrap();
            }
            // Each session sees exactly its own statements: trace count
            // matches its executions, and every trace is its own query.
            let traces = session.traces();
            assert_eq!(traces.len(), (i + 1) * 5);
            for t in traces {
                assert_eq!(
                    t.spans[0].attr("aql").and_then(|v| v.as_str()),
                    Some(session.prepare(&q).unwrap().cache_key())
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn writers_and_readers_interleave_coherently() {
    let shared = seeded(1);
    let mut handles = Vec::new();
    for i in 0..8 {
        let shared = shared.clone();
        handles.push(thread::spawn(move || {
            let mut session = shared.session();
            session
                .run(&format!("store filter(A, v > {}) into W{i}", i * 10))
                .unwrap();
            // Our own write is immediately visible to our session.
            let got = session.query(&format!("scan(W{i})")).unwrap();
            assert_eq!(got.cell_count(), 64);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // All writes are visible afterwards from a fresh session.
    let mut session = shared.session();
    let names = shared.array_names();
    for i in 0..8 {
        assert!(names.iter().any(|n| n == &format!("W{i}")));
        session.query(&format!("scan(W{i})")).unwrap();
    }
}

#[test]
fn exists_probes_race_with_inserts_without_corruption() {
    let shared = seeded(1);
    let writer = {
        let shared = shared.clone();
        thread::spawn(move || {
            let mut session = shared.session();
            for x in 1..=8 {
                for y in 1..=8 {
                    session
                        .run(&format!("insert into A[{x}, {y}] values (0)"))
                        .unwrap();
                }
            }
        })
    };
    let reader = {
        let shared = shared.clone();
        thread::spawn(move || {
            let mut session = shared.session();
            for _ in 0..50 {
                let r = session.run("exists(A, 4, 4)").unwrap().pop().unwrap();
                assert!(matches!(r, StmtResult::Bool(true)));
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    let got = shared.session().query("scan(A)").unwrap();
    assert_eq!(got.get_cell(&[4, 4]), Some(vec![Value::from(0i64)]));
}

#[test]
fn shared_handle_is_cheap_to_clone_and_send() {
    let shared = seeded(1);
    let arc: Arc<SharedDatabase> = Arc::new(shared.clone());
    let h = thread::spawn(move || arc.session().query("scan(A)").unwrap().cell_count());
    assert_eq!(h.join().unwrap(), 64);
}
