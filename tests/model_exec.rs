//! Model checking for the order-preserving scoped-thread map in
//! `scidb_core::exec` (`par_map_threads`).
//!
//! `loom`/`shuttle` are unavailable in this hermetic build, so this file
//! hand-rolls the same idea at the algorithm's natural granularity: the
//! claim loop's only shared mutation is one `AtomicUsize::fetch_add`, so a
//! schedule is fully described by *which worker wins each claim*. The model
//! below exhaustively enumerates every such schedule (DFS over worker
//! choices, including all claim/termination interleavings) and checks, for
//! each one, the invariants the executor relies on:
//!
//! 1. every item is claimed exactly once (no loss, no duplication),
//! 2. the merge — concatenate per-worker buffers in join order, then sort
//!    by claimed index — restores input order bitwise,
//! 3. all workers terminate (each observes an index past the end).
//!
//! A real-thread adversarial stress test then drives the actual
//! `ExecContext::par_map` with skewed per-item delays to cross-check the
//! model against the implementation.

use scidb_core::exec::ExecContext;

/// One worker in the modelled claim loop.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Worker {
    /// Indices this worker has claimed, in claim order (its local buffer).
    claimed: Vec<usize>,
    /// Set once the worker reads an index `>= n` and exits its loop.
    done: bool,
}

/// The shared state of the modelled algorithm: `next` is the
/// `AtomicUsize`; a step is one `fetch_add(1)` by a chosen worker.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Model {
    next: usize,
    n: usize,
    workers: Vec<Worker>,
}

impl Model {
    fn new(n_items: usize, n_workers: usize) -> Model {
        Model {
            next: 0,
            n: n_items,
            workers: vec![
                Worker {
                    claimed: Vec::new(),
                    done: false
                };
                n_workers
            ],
        }
    }

    /// Workers that can still take a step.
    fn runnable(&self) -> Vec<usize> {
        (0..self.workers.len())
            .filter(|&w| !self.workers[w].done)
            .collect()
    }

    /// Worker `w` performs one `fetch_add` claim (atomic: read + increment
    /// are indivisible, which is exactly the guarantee `AtomicUsize` gives
    /// the real code).
    fn step(&mut self, w: usize) {
        let i = self.next;
        self.next += 1;
        if i < self.n {
            self.workers[w].claimed.push(i);
        } else {
            self.workers[w].done = true;
        }
    }

    /// The executor's merge: per-worker buffers concatenated in join
    /// order, each item tagged with its claimed index, sorted by index.
    fn merged(&self) -> Vec<usize> {
        let mut labelled: Vec<usize> = self
            .workers
            .iter()
            .flat_map(|w| w.claimed.iter().copied())
            .collect();
        labelled.sort_unstable();
        labelled
    }
}

/// DFS over every schedule; calls `check` on each terminal state.
/// Returns the number of distinct complete schedules explored.
fn explore(model: Model, check: &mut dyn FnMut(&Model)) -> u64 {
    let runnable = model.runnable();
    if runnable.is_empty() {
        check(&model);
        return 1;
    }
    let mut schedules = 0;
    for w in runnable {
        let mut next = model.clone();
        next.step(w);
        schedules += explore(next, check);
    }
    schedules
}

fn assert_invariants(m: &Model) {
    // (1) + (2): the merge is exactly 0..n — each index once, in order.
    let merged = m.merged();
    assert_eq!(
        merged,
        (0..m.n).collect::<Vec<_>>(),
        "schedule lost or duplicated items: {m:?}"
    );
    // (3): every worker saw the end of the range.
    assert!(
        m.workers.iter().all(|w| w.done),
        "non-terminated worker in terminal state: {m:?}"
    );
}

#[test]
fn model_exhaustive_small_schedules() {
    // All (items, workers) shapes small enough to enumerate exhaustively,
    // including degenerate ones (zero items, more workers than items).
    let mut total = 0u64;
    for n_items in 0..=5 {
        for n_workers in 1..=4 {
            let mut seen = 0u64;
            let explored = explore(Model::new(n_items, n_workers), &mut |m| {
                assert_invariants(m);
                seen += 1;
            });
            assert_eq!(explored, seen);
            assert!(explored > 0);
            total += explored;
        }
    }
    // The point of the test is breadth: thousands of distinct interleavings.
    assert!(total > 10_000, "explored only {total} schedules");
}

#[test]
fn model_single_worker_is_serial() {
    // One worker admits exactly one schedule: claim 0..n in order.
    let schedules = explore(Model::new(6, 1), &mut |m| {
        assert_eq!(m.workers[0].claimed, vec![0, 1, 2, 3, 4, 5]);
    });
    assert_eq!(schedules, 1);
}

#[test]
fn model_adversarial_prefix_then_check() {
    // Worst-case skew: worker 0 claims everything before the others run.
    let mut m = Model::new(5, 3);
    for _ in 0..5 {
        m.step(0);
    }
    // The stragglers only observe termination.
    m.step(1);
    m.step(2);
    m.step(0);
    assert_invariants(&m);
    assert_eq!(m.workers[0].claimed, vec![0, 1, 2, 3, 4]);
    assert!(m.workers[1].claimed.is_empty());
}

/// Cross-check against the real implementation: items with adversarial,
/// position-dependent delays (late items finish first) must still come
/// back in input order at every thread count.
#[test]
fn real_threads_preserve_order_under_skewed_delays() {
    let items: Vec<u64> = (0..64).collect();
    for threads in [1, 2, 3, 4, 8] {
        let ctx = ExecContext::with_threads(threads);
        let out = ctx.par_map(&items, |&x| {
            // Earlier items spin longer, so completion order inverts
            // submission order and the merge must re-sort.
            let spins = (64 - x) * 500;
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(i ^ x);
            }
            std::hint::black_box(acc);
            x * 3 + 1
        });
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(out, expect, "order broken at threads={threads}");
    }
}

/// Observability under the same scoped-thread map: the span tree rendered
/// without times is byte-identical at every thread count, and the kernel
/// events recorded by concurrent workers are lossless (same count, same
/// aggregate chunk/cell totals — only their interleaving order may vary).
#[test]
fn span_tree_is_deterministic_under_parallel_kernels() {
    use scidb_obs::{RenderOptions, Trace, LAYER_QUERY};
    use std::time::Duration;

    let items: Vec<u64> = (0..32).collect();
    let run = |threads: usize| -> (String, usize, u64, u64) {
        let ctx = ExecContext::with_threads(threads);
        let trace = Trace::new();
        let root = trace.root("statement", LAYER_QUERY);
        let node = root.child("map", LAYER_QUERY);
        let prev = ctx.set_current_span(Some(node.clone()));
        let out = ctx.par_map(&items, |&x| {
            ctx.record("op", 1, x, Duration::from_micros(1));
            x
        });
        ctx.set_current_span(prev);
        node.finish();
        root.finish();
        let data = trace.finish();
        assert_eq!(out, items);
        let events = data.kernel_events();
        assert!(events.iter().all(|e| e.op == "op"));
        let chunks: u64 = events.iter().map(|e| e.chunks).sum();
        let cells: u64 = events.iter().map(|e| e.cells).sum();
        let tree = data.render_tree(&RenderOptions {
            times: false,
            events: false,
        });
        (tree, events.len(), chunks, cells)
    };

    let (serial_tree, serial_n, serial_chunks, serial_cells) = run(1);
    assert_eq!(serial_tree, "statement [query]\n└─ map [query]\n");
    assert_eq!(serial_n, 32);
    for threads in [2, 4] {
        let (tree, n, chunks, cells) = run(threads);
        assert_eq!(tree, serial_tree, "tree differs at threads={threads}");
        assert_eq!(n, serial_n, "events lost at threads={threads}");
        assert_eq!(chunks, serial_chunks);
        assert_eq!(cells, serial_cells);
    }
}

/// Child spans opened from concurrent workers all nest under the right
/// parent, carry their attributes, and come back sorted by creation id.
#[test]
fn parallel_child_spans_nest_under_the_right_parent() {
    use scidb_obs::{Trace, LAYER_GRID, LAYER_QUERY};

    let items: Vec<u64> = (0..16).collect();
    for threads in [1, 2, 4] {
        let ctx = ExecContext::with_threads(threads);
        let trace = Trace::new();
        let root = trace.root("statement", LAYER_QUERY);
        ctx.par_map(&items, |&x| {
            let s = root.child("task", LAYER_GRID);
            s.set_attr("item", x);
            s.finish();
            x
        });
        root.finish();
        let data = trace.finish();
        let root_id = data
            .spans
            .iter()
            .find(|s| s.name == "statement")
            .expect("root span present")
            .id;
        let children: Vec<_> = data
            .spans
            .iter()
            .filter(|s| s.parent == Some(root_id))
            .collect();
        assert_eq!(children.len(), items.len(), "threads={threads}");
        let mut seen: Vec<u64> = children
            .iter()
            .filter_map(|s| s.attr("item").and_then(|v| v.as_u64()))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, items, "threads={threads}");
        assert!(
            data.spans.windows(2).all(|w| w[0].id < w[1].id),
            "spans not sorted by creation id at threads={threads}"
        );
    }
}

/// Errors must also be deterministic: `try_par_map` reports the
/// first-by-index failure regardless of schedule.
#[test]
fn real_threads_first_error_is_by_index_not_by_time() {
    let items: Vec<u64> = (0..32).collect();
    for threads in [1, 2, 4, 8] {
        let ctx = ExecContext::with_threads(threads);
        let res = ctx.try_par_map(&items, |&x| {
            if x % 2 == 1 {
                // Odd items fail; item 1 must win even when item 31's
                // worker errors first in wall-clock time.
                Err(scidb_core::Error::eval(format!("item {x} failed")))
            } else {
                Ok(x)
            }
        });
        let err = res.expect_err("odd items must fail");
        assert!(
            err.to_string().contains("item 1 failed"),
            "threads={threads}: {err}"
        );
    }
}
