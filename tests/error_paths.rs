//! Error-path regression tests: the failures that used to (or could)
//! panic must surface as typed `Err` values. Companions to the R1
//! conversions enforced by `cargo xtask analyze`.

use scidb::core::geometry::HyperRect;
use scidb::core::ops;
use scidb::core::registry::Registry;
use scidb::storage::{CodecPolicy, MemDisk, ReadOptions, StorageManager};
use scidb::{Array, ScalarType, SchemaBuilder, Value};
use std::sync::Arc;

fn stored(n: i64) -> StorageManager {
    let schema = SchemaBuilder::new("grid")
        .attr("v", ScalarType::Float64)
        .dim_chunked("x", n, 8)
        .dim_chunked("y", n, 8)
        .build()
        .unwrap();
    let mut a = Array::new(schema);
    a.fill_with(|c| vec![Value::from((c[0] * 100 + c[1]) as f64)])
        .unwrap();
    let mut mgr = StorageManager::new(
        Arc::new(MemDisk::new()),
        a.schema_arc(),
        CodecPolicy::default_policy(),
    );
    mgr.store_array(&a).unwrap();
    mgr
}

#[test]
fn read_region_out_of_bounds_is_err() {
    let mgr = stored(16);
    // Past the declared upper bound.
    let high = HyperRect::new(vec![1, 1], vec![17, 16]).unwrap();
    let err = mgr
        .read_region(&high, ReadOptions::default())
        .expect_err("beyond upper bound");
    assert!(err.to_string().contains("out of bounds"), "{err}");
    // Below the 1-based lower bound.
    let low = HyperRect::new(vec![0, 1], vec![4, 4]).unwrap();
    assert!(mgr.read_region(&low, ReadOptions::default()).is_err());
    // Wrong rank.
    let flat = HyperRect::new(vec![1], vec![4]).unwrap();
    let err = mgr
        .read_region(&flat, ReadOptions::default())
        .expect_err("rank mismatch");
    assert!(err.to_string().contains("rank"), "{err}");
    // The in-bounds corner still works.
    let ok = HyperRect::new(vec![1, 1], vec![16, 16]).unwrap();
    let (arr, _) = mgr.read_region(&ok, ReadOptions::default()).unwrap();
    assert_eq!(arr.cell_count(), 256);
}

#[test]
fn malformed_schema_is_err() {
    // Zero-extent dimension.
    assert!(SchemaBuilder::new("bad")
        .attr("v", ScalarType::Int64)
        .dim("x", 0)
        .build()
        .is_err());
    // No attributes at all.
    assert!(SchemaBuilder::new("bad").dim("x", 4).build().is_err());
    // Duplicate dimension names.
    assert!(SchemaBuilder::new("bad")
        .attr("v", ScalarType::Int64)
        .dim("x", 4)
        .dim("x", 4)
        .build()
        .is_err());
    // The fallible convenience constructors propagate instead of panicking.
    assert!(Array::try_int_1d("", "v", &[1, 2]).is_err());
    assert!(Array::try_f64_2d("", "v", &[vec![1.0]]).is_err());
    assert!(Array::try_int_1d("ok", "v", &[1, 2, 3]).is_ok());
}

#[test]
fn malformed_query_schema_is_err() {
    use scidb::query::Database;
    let mut db = Database::new();
    let mut sess = db.session();
    // A parse error, not a panic.
    assert!(sess.run("create array A <v:int64> [x=1:0]").is_err());
    // Statement-count misuse reports instead of unwrapping.
    assert!(scidb::query::parse_one("load A; load B").is_err());
    assert!(scidb::query::parse_one("").is_err());
}

#[test]
fn mismatched_shape_operator_inputs_are_err() {
    let r = Registry::with_builtins();
    let a = Array::f64_2d("A", "v", &[vec![1.0, 2.0], vec![3.0, 4.0]]);
    let b = Array::int_1d("B", "w", &[1, 2, 3]);
    // Structural join of a 2-D with a 1-D array on a missing dimension.
    assert!(ops::structural::sjoin(&a, &b, &[("i", "i"), ("j", "j")]).is_err());
    // Concat along a dimension that does not exist.
    assert!(ops::structural::concat(&a, &b, "nope").is_err());
    // Regrid with the wrong number of factors (rank mismatch).
    assert!(ops::regrid::regrid(&a, &[2], "avg", &r).is_err());
    // Dense slab scan with a region of the wrong rank.
    let flat = HyperRect::new(vec![1], vec![2]).unwrap();
    assert!(ops::dense::slab_sum_f64(&a, 0, &flat).is_err());
}
